(* Tests for the trace capture/replay subsystem: format roundtrip and
   rejection, recording determinism, replay fidelity (live vs replay,
   record-of-replay byte equality, cross-collector), differential
   testing (clean and under injected faults), the checked-in corpus, and
   the did-you-mean name resolution. *)

open Repro_trace

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

let tmp name = Filename.concat (Filename.get_temp_dir_name ()) name

let bench = Repro_mutator.Benchmarks.find

let record ?(collector = Repro_lxr.Lxr.factory) ?(seed = 7) ?(scale = 0.05)
    ?(factor = 1.5) ?record_to name =
  Repro_harness.Runner.run ~seed ~scale ?record_to ~workload:(bench name)
    ~factory:collector ~heap_factor:factor ()

let load path =
  match Trace_format.of_file path with
  | Ok t -> t
  | Error msg -> Alcotest.failf "trace %s failed to load: %s" path msg

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

(* --- format ----------------------------------------------------------- *)

let sample_trace () =
  let cfg = Repro_heap.Heap_config.make ~heap_bytes:(1 lsl 20) () in
  let header =
    Trace_format.make_header ~workload:"synthetic" ~collector:"none" ~seed:3
      ~scale:0.5 ~heap_factor:2.0 ~cfg
  in
  let events =
    [| Trace_format.Alloc { id = 1; size = 48; nfields = 3; large = false };
       Trace_format.Alloc { id = 2; size = 65536; nfields = 1; large = true };
       Trace_format.Root { slot = 0; value = 1 };
       Trace_format.Write { src = 1; field = 2; value = 2 };
       Trace_format.Read { src = 1; field = 2 };
       Trace_format.Work { ns = 1234.5 };
       Trace_format.Safepoint;
       Trace_format.Request_start { gap = 99.25 };
       Trace_format.Request_end;
       Trace_format.Measurement_start;
       Trace_format.Survived { bytes = 48 };
       Trace_format.Alloc_failed { size = 1 lsl 21; nfields = 0 };
       Trace_format.Root { slot = 0; value = -1 };
       Trace_format.Finish |]
  in
  Trace_format.of_events header events

let test_roundtrip () =
  let t = sample_trace () in
  match Trace_format.of_string (Trace_format.to_string t) with
  | Error msg -> Alcotest.failf "roundtrip failed: %s" msg
  | Ok t' ->
    check "header survives" true (t'.header = t.header);
    check_int "version" Trace_format.current_version t'.header.version;
    check "events survive" true (Trace_format.events t' = Trace_format.events t)

let test_rejects_corruption () =
  let s = Trace_format.to_string (sample_trace ()) in
  let expect_error label s' =
    match Trace_format.of_string s' with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "%s accepted" label
  in
  (* Flip one payload byte: the checksum must catch it. *)
  let b = Bytes.of_string s in
  Bytes.set b (String.length s / 2)
    (Char.chr (Char.code (Bytes.get b (String.length s / 2)) lxor 0x40));
  expect_error "bit flip" (Bytes.to_string b);
  expect_error "truncation" (String.sub s 0 (String.length s - 3));
  expect_error "trailing garbage" (s ^ "x");
  expect_error "bad magic" ("NOTTRACE" ^ String.sub s 8 (String.length s - 8));
  expect_error "empty" "";
  (* A bumped version byte must be rejected, not misparsed. *)
  let b = Bytes.of_string s in
  Bytes.set b 8 (Char.chr (Trace_format.current_version + 1));
  expect_error "future version" (Bytes.to_string b)

(* --- qcheck: ring round-trip ------------------------------------------- *)

(* Random event streams: encode -> one-pass ring decode -> boxed view
   must reproduce the seed array exactly (the boxed constructor path
   [of_events] is the reference representation), and re-encoding the
   decoded ring must be byte-identical to the first encoding. Operand
   ranges cover the full shapes the recorder emits, null (-1) referents
   included — negatives exercise the 10-byte LEB128 escape. *)
let gen_event : Trace_format.event QCheck.Gen.t =
  let open QCheck.Gen in
  let rid = int_range 1 1_000_000 in
  let vref = frequency [ (1, return (-1)); (4, int_range 1 1_000_000) ] in
  let posf = map (fun n -> Float.of_int n /. 16.0) (int_range 0 (1 lsl 20)) in
  frequency
    [ ( 4,
        map
          (fun ((id, size), (nfields, large)) ->
            Trace_format.Alloc { id; size; nfields; large })
          (pair (pair rid (int_range 16 65536)) (pair (int_range 0 8) bool)) );
      ( 1,
        map
          (fun (size, nfields) -> Trace_format.Alloc_failed { size; nfields })
          (pair (int_range 1 (1 lsl 22)) (int_range 0 8)) );
      ( 4,
        map
          (fun ((src, field), value) -> Trace_format.Write { src; field; value })
          (pair (pair rid (int_range 0 7)) vref) );
      ( 2,
        map
          (fun (src, field) -> Trace_format.Read { src; field })
          (pair rid (int_range 0 7)) );
      ( 2,
        map
          (fun (slot, value) -> Trace_format.Root { slot; value })
          (pair (int_range 0 63) vref) );
      (2, map (fun ns -> Trace_format.Work { ns }) posf);
      (1, return Trace_format.Safepoint);
      (1, map (fun gap -> Trace_format.Request_start { gap }) posf);
      (1, return Trace_format.Request_end);
      (1, return Trace_format.Measurement_start);
      ( 1,
        map (fun bytes -> Trace_format.Survived { bytes }) (int_range 0 (1 lsl 20))
      );
      (1, return Trace_format.Finish) ]

let print_event (e : Trace_format.event) =
  match e with
  | Alloc { id; size; nfields; large } ->
    Printf.sprintf "Alloc{id=%d;size=%d;nfields=%d;large=%b}" id size nfields
      large
  | Alloc_failed { size; nfields } ->
    Printf.sprintf "Alloc_failed{size=%d;nfields=%d}" size nfields
  | Write { src; field; value } ->
    Printf.sprintf "Write{src=%d;field=%d;value=%d}" src field value
  | Read { src; field } -> Printf.sprintf "Read{src=%d;field=%d}" src field
  | Root { slot; value } -> Printf.sprintf "Root{slot=%d;value=%d}" slot value
  | Work { ns } -> Printf.sprintf "Work{ns=%h}" ns
  | Safepoint -> "Safepoint"
  | Request_start { gap } -> Printf.sprintf "Request_start{gap=%h}" gap
  | Request_end -> "Request_end"
  | Measurement_start -> "Measurement_start"
  | Survived { bytes } -> Printf.sprintf "Survived{bytes=%d}" bytes
  | Finish -> "Finish"

let arb_events =
  QCheck.make
    ~print:(fun evs ->
      String.concat "; " (Array.to_list (Array.map print_event evs)))
    QCheck.Gen.(map Array.of_list (list_size (int_range 0 300) gen_event))

let qcheck_header () =
  let cfg = Repro_heap.Heap_config.make ~heap_bytes:(1 lsl 20) () in
  Trace_format.make_header ~workload:"qcheck" ~collector:"none" ~seed:11
    ~scale:1.0 ~heap_factor:2.0 ~cfg

let prop_ring_roundtrip =
  QCheck.Test.make ~count:300 ~name:"ring round-trip equals seed events"
    arb_events (fun evs ->
      let t = Trace_format.of_events (qcheck_header ()) evs in
      let s = Trace_format.to_string t in
      match Trace_format.of_string s with
      | Error msg -> QCheck.Test.fail_reportf "decode failed: %s" msg
      | Ok t' ->
        t'.header = t.header
        && Trace_format.events t' = evs
        && Trace_format.to_string t' = s)

(* Decode-rejection parity: a fixed corruption matrix must keep failing
   with byte-for-byte identical error strings — the contract the
   one-pass ring decoder preserved from the seed decoder. *)
let test_rejection_parity_matrix () =
  let s = Trace_format.to_string (sample_trace ()) in
  let empty = Trace_format.to_string (Trace_format.of_events (qcheck_header ()) [||]) in
  let patch str i c =
    let b = Bytes.of_string str in
    Bytes.set b i c;
    Bytes.to_string b
  in
  let len = String.length s in
  (* Trailer layout: ... events, tag_end byte, count varint, 8 checksum
     bytes. The sample's count (14) and the patched count (15) are both
     single-byte varints, so the count patch is length-preserving and is
     reached before the checksum comparison. *)
  let cases =
    [ ("empty", "", "too short to be a trace");
      ("too short", "LXRTRACE", "too short to be a trace");
      ( "bad magic",
        "NOTTRACE" ^ String.sub s 8 (len - 8),
        "bad magic (not an lxr_trace file)" );
      ( "future version",
        patch s 8 (Char.chr (Trace_format.current_version + 1)),
        Printf.sprintf "unsupported trace version %d (reader supports %d)"
          (Trace_format.current_version + 1)
          Trace_format.current_version );
      ("truncated checksum", String.sub s 0 (len - 3), "truncated trace");
      ("trailing garbage", s ^ "x", "trailing garbage");
      ( "checksum flip",
        patch s (len - 1)
          (Char.chr (Char.code s.[len - 1] lxor 0x40)),
        "checksum mismatch" );
      ( "count mismatch",
        patch s (len - 9) '\015',
        "event count mismatch: trailer says 15, stream has 14" );
      ( "unknown tag",
        patch empty (String.length empty - 10) '\060',
        "unknown event tag 60" );
      ( "varint too long",
        String.sub empty 0 (String.length empty - 10)
        ^ String.make 11 '\xff',
        "varint too long" ) ]
  in
  List.iter
    (fun (label, s', expected) ->
      match Trace_format.of_string s' with
      | Ok _ -> Alcotest.failf "%s accepted" label
      | Error msg -> check_string label expected msg)
    cases

let test_header_heap_config () =
  let t = sample_trace () in
  let cfg = Trace_format.heap_config t.header in
  check_int "heap bytes" (1 lsl 20) cfg.Repro_heap.Heap_config.heap_bytes;
  check_int "block bytes" t.header.block_bytes
    cfg.Repro_heap.Heap_config.block_bytes;
  check_int "los threshold" t.header.los_threshold
    cfg.Repro_heap.Heap_config.los_threshold

(* --- recording -------------------------------------------------------- *)

let test_record_deterministic () =
  let a = tmp "det_a.lxrtrace" and b = tmp "det_b.lxrtrace" in
  let ra = record ~record_to:a "luindex" in
  let rb = record ~record_to:b "luindex" in
  check "both ok" true (ra.ok && rb.ok);
  check "byte-identical recordings" true (read_file a = read_file b);
  let t = load a in
  check "has events" true (Trace_format.num_events t > 100);
  check_string "workload in header" "luindex" t.header.workload;
  check_int "seed in header" 7 t.header.seed

let test_recording_is_free () =
  (* Teeing the stream must not perturb the run itself. *)
  let plain = record "luindex" in
  let taped = record ~record_to:(tmp "free.lxrtrace") "luindex" in
  check "same wall time" true (plain.wall_ns = taped.wall_ns);
  check_int "same allocs" plain.alloc_count taped.alloc_count;
  check_int "same pauses" plain.pause_count taped.pause_count;
  check "same stats" true (plain.collector_stats = taped.collector_stats)

(* --- replay ----------------------------------------------------------- *)

let same_histogram a b =
  Repro_util.Histogram.count a = Repro_util.Histogram.count b
  && List.for_all
       (fun p ->
         Repro_util.Histogram.percentile_opt a p
         = Repro_util.Histogram.percentile_opt b p)
       [ 50.0; 90.0; 99.0; 100.0 ]

let check_same_run label (live : Repro_harness.Runner.result)
    (replayed : Repro_harness.Runner.result) =
  let ck name cond = check (label ^ ": " ^ name) true cond in
  ck "ok" (live.ok = replayed.ok);
  ck "wall" (live.wall_ns = replayed.wall_ns);
  ck "mutator cpu" (live.mutator_cpu_ns = replayed.mutator_cpu_ns);
  ck "gc cpu" (live.gc_cpu_ns = replayed.gc_cpu_ns);
  ck "stw wall" (live.stw_wall_ns = replayed.stw_wall_ns);
  ck "pause count" (live.pause_count = replayed.pause_count);
  ck "pause histogram" (same_histogram live.pauses replayed.pauses);
  ck "requests" (live.requests = replayed.requests);
  ck "alloc bytes" (live.alloc_bytes = replayed.alloc_bytes);
  ck "alloc count" (live.alloc_count = replayed.alloc_count);
  ck "survived" (live.survived_bytes = replayed.survived_bytes);
  ck "large" (live.large_bytes = replayed.large_bytes);
  ck "collector stats" (live.collector_stats = replayed.collector_stats);
  (match (live.latency, replayed.latency) with
  | Some a, Some b -> ck "latency histogram" (same_histogram a b)
  | None, None -> ()
  | _ -> ck "latency presence" false)

let test_replay_matches_live () =
  let path = tmp "fidelity.lxrtrace" in
  let live = record ~record_to:path "luindex" in
  let replayed =
    Repro_harness.Runner.replay ~trace:(load path)
      ~factory:Repro_lxr.Lxr.factory ()
  in
  check_same_run "luindex/lxr" live replayed

let test_replay_matches_live_requests () =
  (* A latency workload: request markers, metered arrivals, latency
     histogram — all must survive the trip through the trace. *)
  let path = tmp "fidelity_req.lxrtrace" in
  let live = record ~scale:0.01 ~record_to:path "lusearch" in
  check "live has requests" true (live.requests > 0);
  let replayed =
    Repro_harness.Runner.replay ~trace:(load path)
      ~factory:Repro_lxr.Lxr.factory ()
  in
  check_same_run "lusearch/lxr" live replayed

let test_replay_cross_collector () =
  (* The stream is collector-independent: replaying an LXR-recorded
     trace under G1 must equal a live G1 run on the same workload. *)
  let path = tmp "cross.lxrtrace" in
  let g1 = Repro_collectors.Registry.find "g1" in
  let live_lxr = record ~record_to:path "luindex" in
  check "recording run ok" true live_lxr.ok;
  let live_g1 = record ~collector:g1 "luindex" in
  let replayed_g1 = Repro_harness.Runner.replay ~trace:(load path) ~factory:g1 () in
  check_same_run "luindex/g1" live_g1 replayed_g1

let test_record_of_replay_is_identity () =
  let path = tmp "rr_a.lxrtrace" and path' = tmp "rr_b.lxrtrace" in
  ignore (record ~record_to:path "luindex");
  let r =
    Repro_harness.Runner.replay ~record_to:path' ~trace:(load path)
      ~factory:Repro_lxr.Lxr.factory ()
  in
  check "replay ok" true r.ok;
  check "record of replay is byte-identical" true
    (read_file path = read_file path')

(* --- differential testing --------------------------------------------- *)

let lanes names =
  List.map (fun n -> (n, Option.get (Repro_harness.Collector_set.find n |> Result.to_option))) names

let test_diff_clean () =
  let path = tmp "diff_clean.lxrtrace" in
  ignore (record ~record_to:path "luindex");
  let report =
    Differ.run ~verify:true ~trace:(load path)
      ~collectors:(lanes [ "lxr"; "g1"; "shenandoah" ])
      ()
  in
  check_int "no divergences" 0 report.total_divergences;
  check "checkpoints ran" true (report.checkpoints > 0);
  check "oracle ran per collector" true
    (report.oracle_checks >= 3 * report.checkpoints)

let test_diff_localises_injected_fault () =
  let path = tmp "diff_fault.lxrtrace" in
  ignore (record ~record_to:path "luindex");
  let fault =
    match Repro_engine.Fault.of_spec ~seed:7 "drop-barrier:2e-3" with
    | Ok f -> f
    | Error m -> Alcotest.fail m
  in
  let report =
    Differ.run ~verify:true ~inject:("lxr", fault) ~trace:(load path)
      ~collectors:(lanes [ "lxr"; "g1" ])
      ()
  in
  check "divergence detected" true (report.total_divergences > 0);
  match report.divergences with
  | [] -> Alcotest.fail "no divergence retained"
  | d :: _ ->
    check "localised to the faulty lane" true
      (d.subject <> "" && d.event_index > 0);
    check "points at the injected collector or a concrete object" true
      (String.length d.detail > 0)

(* --- corpus ----------------------------------------------------------- *)

let corpus_files () =
  Sys.readdir "corpus" |> Array.to_list
  |> List.filter (fun f -> Filename.check_suffix f ".lxrtrace")
  |> List.sort compare
  |> List.map (Filename.concat "corpus")

let test_corpus_present () =
  check "3-workload corpus" true (List.length (corpus_files ()) >= 3)

let test_corpus_replays_everywhere () =
  (* Acceptance: each corpus trace, replayed through LXR, G1 and the
     concurrent mark-evacuate family, equals the live run at that seed. *)
  List.iter
    (fun path ->
      let trace = load path in
      let h = trace.Trace_format.header in
      List.iter
        (fun name ->
          let factory =
            match Repro_harness.Collector_set.find name with
            | Ok f -> f
            | Error m -> Alcotest.fail m
          in
          let live =
            Repro_harness.Runner.run ~seed:h.seed ~scale:h.scale
              ~workload:(bench h.workload) ~factory ~heap_factor:h.heap_factor
              ()
          in
          let replayed = Repro_harness.Runner.replay ~trace ~factory () in
          check_same_run
            (Printf.sprintf "%s under %s" (Filename.basename path) name)
            live replayed)
        [ "lxr"; "g1"; "shenandoah" ])
    (corpus_files ())

let test_specialised_equals_generic () =
  (* The specialised per-collector loop must be observationally identical
     to the generic reference loop: same run metrics, byte-identical
     record-of-replay — over every corpus trace and collector lane. *)
  List.iter
    (fun path ->
      let trace = load path in
      List.iter
        (fun name ->
          let factory =
            match Repro_harness.Collector_set.find name with
            | Ok f -> f
            | Error m -> Alcotest.fail m
          in
          let base = Filename.basename path in
          let fast_out = tmp (base ^ "." ^ name ^ ".fast.ror") in
          let gen_out = tmp (base ^ "." ^ name ^ ".gen.ror") in
          let fast =
            Repro_harness.Runner.replay ~loop:`Auto ~record_to:fast_out ~trace
              ~factory ()
          in
          let generic =
            Repro_harness.Runner.replay ~loop:`Generic ~record_to:gen_out
              ~trace ~factory ()
          in
          check_same_run
            (Printf.sprintf "%s/%s specialised vs generic" base name)
            fast generic;
          check
            (Printf.sprintf "%s/%s record-of-replay bytes equal" base name)
            true
            (read_file fast_out = read_file gen_out))
        [ "lxr"; "g1"; "shenandoah"; "journal_rc" ])
    (corpus_files ())

let test_corpus_record_of_replay_fixpoint () =
  (* The checked-in corpus traces are record-of-replay fixpoints:
     replaying one under LXR while recording must reproduce the file byte
     for byte. This pins the object store's external id assignment — ids
     are monotonic allocation-sequence numbers, so recycled slots must
     never leak into the ids the recorder writes. *)
  List.iter
    (fun path ->
      let out = tmp (Filename.basename path ^ ".ror") in
      let r =
        Repro_harness.Runner.replay ~record_to:out ~trace:(load path)
          ~factory:Repro_lxr.Lxr.factory ()
      in
      check (path ^ ": replay ok") true r.ok;
      check
        (path ^ ": record of replay is byte-identical to the corpus file")
        true
        (read_file path = read_file out))
    (corpus_files ())

let test_corpus_diff_clean () =
  List.iter
    (fun path ->
      let report =
        Differ.run ~verify:true ~trace:(load path)
          ~collectors:(lanes [ "lxr"; "g1"; "shenandoah" ])
          ()
      in
      check_int (Filename.basename path ^ " divergence-free") 0
        report.total_divergences)
    (corpus_files ())

(* --- name suggestions ------------------------------------------------- *)

let test_suggest () =
  check_int "distance" 1 (Repro_util.Suggest.edit_distance "g1" "g2");
  check "close match" true
    (Repro_util.Suggest.closest ~candidates:[ "lusearch"; "luindex" ] "lusearhc"
    = Some "lusearch");
  check "no match for garbage" true
    (Repro_util.Suggest.closest ~candidates:[ "lusearch" ] "zzzzzzzz" = None);
  check_string "hint rendering" " (did you mean \"g1\"?)"
    (Repro_util.Suggest.hint ~candidates:[ "g1"; "zgc" ] "g2")

let contains ~needle hay =
  let n = String.length needle and h = String.length hay in
  let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
  go 0

let test_unknown_names () =
  (match Repro_harness.Collector_set.find "shenandoa" with
  | Ok _ -> Alcotest.fail "accepted bad collector"
  | Error msg ->
    check "collector suggestion" true
      (contains ~needle:"did you mean \"shenandoah\"" msg));
  match Repro_harness.Collector_set.find_workload "luindx" with
  | Ok _ -> Alcotest.fail "accepted bad workload"
  | Error msg ->
    check "workload suggestion" true
      (contains ~needle:"did you mean \"luindex\"" msg)

let suite =
  [ ( "trace:format",
      [ Alcotest.test_case "roundtrip" `Quick test_roundtrip;
        Alcotest.test_case "rejects corruption" `Quick test_rejects_corruption;
        Alcotest.test_case "rejection parity matrix" `Quick
          test_rejection_parity_matrix;
        QCheck_alcotest.to_alcotest prop_ring_roundtrip;
        Alcotest.test_case "header rebuilds heap config" `Quick
          test_header_heap_config ] );
    ( "trace:record",
      [ Alcotest.test_case "deterministic recording" `Quick
          test_record_deterministic;
        Alcotest.test_case "recording is observationally free" `Quick
          test_recording_is_free ] );
    ( "trace:replay",
      [ Alcotest.test_case "replay matches live" `Quick test_replay_matches_live;
        Alcotest.test_case "replay matches live (requests)" `Quick
          test_replay_matches_live_requests;
        Alcotest.test_case "cross-collector fidelity" `Quick
          test_replay_cross_collector;
        Alcotest.test_case "record of replay is identity" `Quick
          test_record_of_replay_is_identity ] );
    ( "trace:diff",
      [ Alcotest.test_case "clean three-way diff" `Quick test_diff_clean;
        Alcotest.test_case "injected fault localised" `Quick
          test_diff_localises_injected_fault ] );
    ( "trace:corpus",
      [ Alcotest.test_case "corpus present" `Quick test_corpus_present;
        Alcotest.test_case "corpus replays everywhere" `Slow
          test_corpus_replays_everywhere;
        Alcotest.test_case "corpus record-of-replay fixpoint" `Quick
          test_corpus_record_of_replay_fixpoint;
        Alcotest.test_case "specialised loop equals generic" `Slow
          test_specialised_equals_generic;
        Alcotest.test_case "corpus diffs clean" `Slow test_corpus_diff_clean ] );
    ( "trace:names",
      [ Alcotest.test_case "suggest" `Quick test_suggest;
        Alcotest.test_case "unknown names suggest" `Quick test_unknown_names ] )
  ]
