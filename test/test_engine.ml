(* Tests for the virtual-time engine: clock, parallelism model, barriers,
   and the mutator API. *)

open Repro_engine
open Repro_heap

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_float = Alcotest.(check (float 1e-6))

let no_conc = fun ~budget_ns:_ -> 0.0

(* --- Trace_cost ----------------------------------------------------------- *)

let test_trace_cost_serial () =
  let tc = Trace_cost.create () in
  Trace_cost.add_serial tc ~cost_ns:100.0;
  check_float "cpu" 100.0 (Trace_cost.cpu_ns tc);
  check_float "critical = cpu when serial" 100.0 (Trace_cost.critical_ns tc)

let test_trace_cost_parallel () =
  let tc = Trace_cost.create () in
  Trace_cost.add_parallel tc ~threads:4 ~cost_ns:100.0;
  check_float "cpu" 100.0 (Trace_cost.cpu_ns tc);
  check_float "critical divided" 25.0 (Trace_cost.critical_ns tc)

let test_trace_cost_frontier_limited () =
  let tc = Trace_cost.create () in
  (* Frontier of 2 with 8 threads: only 2-way parallelism available. *)
  Trace_cost.add tc ~threads:8 ~frontier:2 ~cost_ns:100.0;
  check_float "limited" 50.0 (Trace_cost.critical_ns tc);
  Trace_cost.reset tc;
  check_float "reset" 0.0 (Trace_cost.cpu_ns tc)

let test_trace_cost_linked_list_pathology () =
  (* A 1000-node list traced with 8 threads costs the same wall time as
     with 1 thread: the paper's §5.2 scalability argument. *)
  let wall threads =
    let tc = Trace_cost.create () in
    for _ = 1 to 1000 do
      Trace_cost.add tc ~threads ~frontier:1 ~cost_ns:10.0
    done;
    Trace_cost.critical_ns tc
  in
  check_float "list defeats parallelism" (wall 1) (wall 8)

(* --- Sim -------------------------------------------------------------------- *)

let test_sim_flush_unsaturated () =
  let sim = Sim.create Cost_model.default in
  (* 8 mutator threads on 32 cores: aggregate work divides by 8. *)
  Sim.charge_mutator sim 8000.0;
  Sim.flush sim ~conc_threads:0 ~conc_run:no_conc;
  check_float "wall" 1000.0 (Sim.now sim);
  check_float "mutator cpu" 8000.0 (Sim.mutator_cpu sim);
  check_float "pending drained" 0.0 (Sim.pending sim)

let test_sim_flush_core_stealing () =
  let cost = Cost_model.with_threads ~cores:8 ~mutator_threads:8 Cost_model.default in
  let sim = Sim.create cost in
  Sim.charge_mutator sim 8000.0;
  (* 4 concurrent GC threads leave only 4 cores for 8 mutator threads:
     wall doubles. *)
  Sim.flush sim ~conc_threads:4 ~conc_run:no_conc;
  check_float "slowed wall" 2000.0 (Sim.now sim)

let test_sim_conc_budget () =
  let sim = Sim.create Cost_model.default in
  Sim.charge_mutator sim 8000.0;
  let budget_seen = ref 0.0 in
  Sim.flush sim ~conc_threads:2 ~conc_run:(fun ~budget_ns ->
      budget_seen := budget_ns;
      budget_ns /. 2.0);
  (* Wall was 1000ns, 2 conc threads -> 2000ns budget. *)
  check_float "budget" 2000.0 !budget_seen;
  check_float "consumed into gc cpu" 1000.0 (Sim.gc_cpu sim)

let test_sim_interference () =
  let sim = Sim.create Cost_model.default in
  Sim.set_interference sim 0.5;
  Sim.charge_mutator sim 8000.0;
  Sim.flush sim ~conc_threads:0 ~conc_run:no_conc;
  check_float "inflated wall" 1500.0 (Sim.now sim)

let test_sim_pause () =
  let sim = Sim.create Cost_model.default in
  Sim.pause sim ~wall_ns:1000.0 ~cpu_ns:4000.0;
  check_float "clock" 1000.0 (Sim.now sim);
  check_float "stw wall" 1000.0 (Sim.stw_wall sim);
  check_float "stw cpu" 4000.0 (Sim.stw_cpu sim);
  check_float "gc cpu" 4000.0 (Sim.gc_cpu sim);
  check_int "pause count" 1 (Sim.pause_count sim);
  check_int "histogram" 1 (Repro_util.Histogram.count (Sim.pauses sim))

let test_sim_idle () =
  let sim = Sim.create Cost_model.default in
  let got = ref 0.0 in
  Sim.advance_idle sim ~until:5000.0 ~conc_threads:1 ~conc_run:(fun ~budget_ns ->
      got := budget_ns;
      0.0);
  check_float "advanced" 5000.0 (Sim.now sim);
  check_float "idle budget" 5000.0 !got;
  (* Idle to the past is a no-op. *)
  Sim.advance_idle sim ~until:1000.0 ~conc_threads:1 ~conc_run:no_conc;
  check_float "no rewind" 5000.0 (Sim.now sim)

let test_sim_reset_measurement () =
  let sim = Sim.create Cost_model.default in
  Sim.charge_mutator sim 800.0;
  Sim.flush sim ~conc_threads:0 ~conc_run:no_conc;
  Sim.pause sim ~wall_ns:10.0 ~cpu_ns:10.0;
  Sim.note_alloc sim ~bytes:64;
  Sim.reset_measurement sim;
  check "clock keeps running" true (Sim.now sim > 0.0);
  check_float "cpu reset" 0.0 (Sim.mutator_cpu sim);
  check_int "pauses reset" 0 (Sim.pause_count sim);
  check_int "alloc reset" 0 (Sim.alloc_bytes sim)

(* --- Api --------------------------------------------------------------------- *)

(* A counting collector that records barrier invocations. *)
let counting_factory writes allocs : Collector.t =
  { Collector.name = "counting";
    on_alloc = (fun _ -> incr allocs);
    on_write = (fun _ _ _ -> incr writes);
    write_extra_ns = 0.0;
    read_extra_ns = 0.0;
    poll = (fun () -> ());
    collect_for_alloc = (fun _ -> ());
    conc_active = (fun () -> 0);
    conc_run = (fun ~budget_ns:_ -> 0.0);
    conc_backlog = (fun () -> 0);
    on_finish = (fun () -> ());
    stats = (fun () -> []);
    introspect = Collector.no_introspection }

let make_api () =
  let heap = Heap.create (Heap_config.make ~heap_bytes:(256 * 1024) ()) in
  let sim = Sim.create Cost_model.default in
  let writes = ref 0 and allocs = ref 0 in
  let api = Api.create sim heap (fun _ _ ~roots:_ -> counting_factory writes allocs) in
  (api, sim, writes, allocs)

let test_api_alloc_and_hooks () =
  let api, sim, _, allocs = make_api () in
  let obj = Api.alloc api ~size:64 ~nfields:2 in
  check_int "hook fired" 1 !allocs;
  check_int "alloc bytes" 64 (Sim.alloc_bytes sim);
  check_int "alloc count" 1 (Sim.alloc_count sim);
  (* The new object is held by the scratch root across the safepoint. *)
  check_int "scratch root" obj.id (Api.roots api).(Api.root_slots - 1)

let test_api_write_barrier_order () =
  let api, _, writes, _ = make_api () in
  let a = Api.alloc api ~size:64 ~nfields:2 in
  let b = Api.alloc api ~size:64 ~nfields:2 in
  Api.write api a 0 b.id;
  check_int "barrier fired" 1 !writes;
  check_int "store landed" b.id (Api.read api a 0)

let test_api_work_and_flush () =
  let api, sim, _, _ = make_api () in
  Api.work api ~ns:123.0;
  Api.safepoint api;
  check "time advanced" true (Sim.now sim > 0.0)

let test_api_roots () =
  let api, _, _, _ = make_api () in
  let a = Api.alloc api ~size:64 ~nfields:1 in
  Api.set_root api 0 a.id;
  check_int "root get" a.id (Api.get_root api 0)

let test_api_oom () =
  let heap = Heap.create (Heap_config.make ~heap_bytes:(64 * 1024) ()) in
  let sim = Sim.create Cost_model.default in
  let writes = ref 0 and allocs = ref 0 in
  let api = Api.create sim heap (fun _ _ ~roots:_ -> counting_factory writes allocs) in
  (* The counting collector never frees anything, so exhaustion must
     surface as a clean [`Oom] value — no exception. *)
  let rec fill n = function
    | `Oom info -> (n, info)
    | `Ok _ ->
      if n > 100_000 then Alcotest.fail "heap never exhausted"
      else fill (n + 1) (Api.try_alloc api ~size:8192 ~nfields:0)
  in
  let n, info = fill 0 (Api.try_alloc api ~size:8192 ~nfields:0) in
  check "some allocations succeeded first" true (n > 0);
  check_int "requested size reported" 8192 info.Api.requested_bytes;
  let l = Api.ladder api in
  check "ladder climbed through young" true (l.Api.young_collections > 0);
  check "ladder climbed through full" true (l.Api.full_collections > 0);
  check "ladder climbed through emergency" true (l.Api.emergency_compactions > 0);
  check "reserve released before giving up" true (l.Api.reserve_releases > 0);
  check "exhaustion counted" true (l.Api.exhaustions > 0);
  (* The raising wrapper reports the same condition as an exception. *)
  check "alloc raises on the same heap" true
    (try
       ignore (Api.alloc api ~size:8192 ~nfields:0);
       false
     with Api.Out_of_memory _ -> true)

let test_api_idle () =
  let api, sim, _, _ = make_api () in
  Api.idle_until api 10_000.0;
  check_float "idle advanced" 10_000.0 (Sim.now sim)

(* --- Cost model ----------------------------------------------------------------- *)

let test_cost_model_sanity () =
  let c = Cost_model.default in
  check "reads cheaper than traces" true (c.read_ns < c.trace_obj_ns);
  check "wb fast below wb slow" true (c.wb_fast_ns < c.wb_slow_ns);
  check "threads fit" true (c.mutator_threads + c.gc_threads <= 2 * c.cores);
  let c2 = Cost_model.with_threads ~gc_threads:2 c in
  check_int "override" 2 c2.gc_threads;
  check_int "others kept" c.cores c2.cores

(* --- Collector helper -------------------------------------------------------------- *)

let test_no_concurrency () =
  let active, run = Collector.no_concurrency () in
  check_int "no threads" 0 (active ());
  check_float "no work" 0.0 (run ~budget_ns:100.0)

let suite =
  [ ( "engine:trace_cost",
      [ Alcotest.test_case "serial" `Quick test_trace_cost_serial;
        Alcotest.test_case "parallel" `Quick test_trace_cost_parallel;
        Alcotest.test_case "frontier" `Quick test_trace_cost_frontier_limited;
        Alcotest.test_case "list pathology" `Quick test_trace_cost_linked_list_pathology ] );
    ( "engine:sim",
      [ Alcotest.test_case "flush" `Quick test_sim_flush_unsaturated;
        Alcotest.test_case "core stealing" `Quick test_sim_flush_core_stealing;
        Alcotest.test_case "conc budget" `Quick test_sim_conc_budget;
        Alcotest.test_case "interference" `Quick test_sim_interference;
        Alcotest.test_case "pause" `Quick test_sim_pause;
        Alcotest.test_case "idle" `Quick test_sim_idle;
        Alcotest.test_case "reset" `Quick test_sim_reset_measurement ] );
    ( "engine:api",
      [ Alcotest.test_case "alloc hooks" `Quick test_api_alloc_and_hooks;
        Alcotest.test_case "write barrier" `Quick test_api_write_barrier_order;
        Alcotest.test_case "work/flush" `Quick test_api_work_and_flush;
        Alcotest.test_case "roots" `Quick test_api_roots;
        Alcotest.test_case "oom" `Quick test_api_oom;
        Alcotest.test_case "idle" `Quick test_api_idle ] );
    ( "engine:misc",
      [ Alcotest.test_case "cost model" `Quick test_cost_model_sanity;
        Alcotest.test_case "no concurrency" `Quick test_no_concurrency ] ) ]
