(* Correctness tests for the baseline collectors.

   Every collector must satisfy the same shadow-graph safety oracle as
   LXR (no reachable object is ever freed) and its own structural
   contracts: semispace copies every survivor, G1 promotes young
   survivors out of young blocks, the concurrent collectors reclaim only
   through evacuation, ZGC refuses small heaps. *)

open Repro_heap
open Repro_engine

let check = Alcotest.(check bool)
let null = Obj_model.null

type env = {
  api : Api.t;
  heap : Heap.t;
  shadow : (int, Obj_model.t) Hashtbl.t;
}

let make_env ?(heap_kb = 256) ~factory () =
  let heap = Heap.create (Heap_config.make ~heap_bytes:(heap_kb * 1024) ()) in
  let sim = Sim.create Cost_model.default in
  let api = Api.create sim heap factory in
  { api; heap; shadow = Hashtbl.create 256 }

let alloc env ?(size = 64) ?(nfields = 4) () =
  let obj = Api.alloc env.api ~size ~nfields in
  Hashtbl.replace env.shadow obj.id obj;
  obj

let spin env ~bytes =
  for _ = 1 to max 1 (bytes / 64) do
    ignore (alloc env ~size:64 ~nfields:2 ())
  done;
  Api.safepoint env.api

let registered env id = Obj_model.Registry.mem env.heap.registry id

let assert_safety env =
  let seen = Hashtbl.create 256 in
  let rec visit id =
    if id <> null && not (Hashtbl.mem seen id) then begin
      Hashtbl.replace seen id ();
      match Hashtbl.find_opt env.shadow id with
      | None -> ()
      | Some obj ->
        if not (registered env id) then
          Alcotest.failf "reachable object %d was freed" id;
        Obj_model.iter_fields visit obj
    end
  in
  Array.iter visit (Api.roots env.api)

let factories =
  [ ("serial", Repro_collectors.Registry.find "serial");
    ("parallel", Repro_collectors.Registry.find "parallel");
    ("immix", Repro_collectors.Registry.find "immix");
    ("semispace", Repro_collectors.Registry.find "semispace");
    ("g1", Repro_collectors.Registry.find "g1");
    ("shenandoah", Repro_collectors.Registry.find "shenandoah");
    ("journal_rc", Repro_collectors.Registry.find "journal_rc") ]

(* One generic scenario run against every baseline: build a small graph,
   churn several heaps' worth of garbage, drop some references, and check
   both safety and reclamation. *)
let lifecycle_scenario factory () =
  let env = make_env ~factory () in
  let table = alloc env ~nfields:16 () in
  Api.set_root env.api 0 table.id;
  let keep = alloc env () in
  Api.write env.api table 0 keep.id;
  let drop = alloc env () in
  Api.write env.api table 1 drop.id;
  (* A cycle that only tracing can reclaim once dropped. *)
  let ca = alloc env () in
  let cb = alloc env () in
  Api.write env.api ca 0 cb.id;
  Api.write env.api cb 0 ca.id;
  Api.write env.api table 2 ca.id;
  spin env ~bytes:(2 * Heap.total_bytes env.heap);
  check "keep alive" true (registered env keep.id);
  check "cycle alive" true (registered env ca.id && registered env cb.id);
  Api.write env.api table 1 null;
  Api.write env.api table 2 null;
  spin env ~bytes:(4 * Heap.total_bytes env.heap);
  check "dropped reclaimed" false (registered env drop.id);
  check "cycle reclaimed" false (registered env ca.id || registered env cb.id);
  check "keep still alive" true (registered env keep.id);
  assert_safety env

let random_ops factory seed () =
  let env = make_env ~factory () in
  let prng = Repro_util.Prng.create seed in
  let objects = ref [] in
  for _ = 1 to 2500 do
    match Repro_util.Prng.int prng 8 with
    | 0 | 1 | 2 ->
      let o = alloc env ~size:(16 + (16 * Repro_util.Prng.int prng 12)) () in
      objects := o.id :: !objects;
      if List.length !objects > 300 then
        objects := List.filteri (fun i _ -> i < 150) !objects
    | 3 ->
      (match !objects with
      | [] -> ()
      | l ->
        let id = List.nth l (Repro_util.Prng.int prng (List.length l)) in
        if registered env id then Api.set_root env.api (Repro_util.Prng.int prng 8) id)
    | 4 -> Api.set_root env.api (Repro_util.Prng.int prng 8) null
    | 5 | 6 ->
      (match !objects with
      | [] -> ()
      | l ->
        let pick () = List.nth l (Repro_util.Prng.int prng (List.length l)) in
        let src = pick () and dst = pick () in
        (match Hashtbl.find_opt env.shadow src with
        | Some s when registered env src && registered env dst && Obj_model.nfields s > 0 ->
          Api.write env.api s (Repro_util.Prng.int prng (Obj_model.nfields s)) dst
        | Some _ | None -> ()))
    | _ -> Api.work env.api ~ns:100.0
  done;
  assert_safety env

(* --- Journal-RC: absolute counts are exact ---------------------------------- *)

(* The journal-RC property: once a snapshot pause has caught the journal
   up and the drain has emptied (which [Api.finish] guarantees), every
   live object's count equals a stop-the-world recount — references from
   live objects' fields plus root-array occurrences. Saturated (stuck)
   counts only ever under-report. *)
let journal_rc_exact_counts seed () =
  let env =
    make_env ~factory:(Repro_collectors.Registry.find "journal_rc") ()
  in
  let prng = Repro_util.Prng.create seed in
  let objects = ref [] in
  for _ = 1 to 2500 do
    match Repro_util.Prng.int prng 8 with
    | 0 | 1 | 2 ->
      let o = alloc env ~size:(16 + (16 * Repro_util.Prng.int prng 12)) () in
      objects := o.id :: !objects;
      if List.length !objects > 300 then
        objects := List.filteri (fun i _ -> i < 150) !objects
    | 3 ->
      (match !objects with
      | [] -> ()
      | l ->
        let id = List.nth l (Repro_util.Prng.int prng (List.length l)) in
        if registered env id then
          Api.set_root env.api (Repro_util.Prng.int prng 8) id)
    | 4 -> Api.set_root env.api (Repro_util.Prng.int prng 8) null
    | 5 | 6 ->
      (match !objects with
      | [] -> ()
      | l ->
        let pick () = List.nth l (Repro_util.Prng.int prng (List.length l)) in
        let src = pick () and dst = pick () in
        (match Hashtbl.find_opt env.shadow src with
        | Some s
          when registered env src && registered env dst
               && Obj_model.nfields s > 0 ->
          Api.write env.api s
            (Repro_util.Prng.int prng (Obj_model.nfields s))
            dst
        | Some _ | None -> ()))
    | _ -> Api.work env.api ~ns:100.0
  done;
  Api.finish env.api;
  let expected = Hashtbl.create 512 in
  let count id =
    if id <> null then
      Hashtbl.replace expected id
        (1 + Option.value (Hashtbl.find_opt expected id) ~default:0)
  in
  Obj_model.Registry.iter (fun o -> Obj_model.iter_fields count o)
    env.heap.registry;
  Array.iter count (Api.roots env.api);
  let stuck = Heap_config.stuck_count env.heap.cfg in
  let audited = ref 0 in
  Obj_model.Registry.iter
    (fun o ->
      incr audited;
      let want = Option.value (Hashtbl.find_opt expected o.id) ~default:0 in
      let got = Heap.rc_of env.heap o in
      (* A saturated count sticks (LXR §3.2); the trace backstop owns
         those objects, so only unsaturated counts are auditable. *)
      if got <> stuck && got <> min want stuck then
        Alcotest.failf "object %d: rc %d but %d references exist" o.id got
          want)
    env.heap.registry;
  check "audited a populated heap" true (!audited > 50);
  assert_safety env

(* --- Collector-specific contracts ------------------------------------------ *)

let test_semispace_copies_survivors () =
  let env = make_env ~factory:(Repro_collectors.Registry.find "semispace") () in
  let obj = alloc env () in
  Api.set_root env.api 0 obj.id;
  let addr0 = (Obj_model.addr obj) in
  spin env ~bytes:(2 * Heap.total_bytes env.heap);
  check "survivor moved by copying collection" true ((Obj_model.addr obj) <> addr0);
  check "still registered" true (registered env obj.id)

let test_g1_promotes_survivors () =
  let env = make_env ~factory:(Repro_collectors.Registry.find "g1") () in
  let obj = alloc env () in
  Api.set_root env.api 0 obj.id;
  spin env ~bytes:(2 * Heap.total_bytes env.heap);
  (* After young collections the survivor must live in an old block. *)
  check "promoted out of young space" false
    (Blocks.young env.heap.blocks (Addr.block_of env.heap.cfg (Obj_model.addr obj)));
  check "alive" true (registered env obj.id)

let test_g1_old_to_young_remembered () =
  let env = make_env ~factory:(Repro_collectors.Registry.find "g1") () in
  let old = alloc env () in
  Api.set_root env.api 0 old.id;
  spin env ~bytes:(2 * Heap.total_bytes env.heap);
  (* [old] is now old; create a young object referenced ONLY from it. *)
  let young = alloc env () in
  Api.write env.api old 0 young.id;
  Api.set_root env.api 7 null;
  spin env ~bytes:(2 * Heap.total_bytes env.heap);
  check "young kept via remembered set" true (registered env young.id);
  assert_safety env

let test_shenandoah_stats_move () =
  let env = make_env ~factory:(Repro_collectors.Registry.find "shenandoah") () in
  let table = alloc env ~nfields:8 () in
  Api.set_root env.api 0 table.id;
  for i = 0 to 7 do
    let o = alloc env () in
    Api.write env.api table i o.id
  done;
  spin env ~bytes:(4 * Heap.total_bytes env.heap);
  let stats = (Api.collector env.api).Collector.stats () in
  let v k = match List.assoc_opt k stats with Some x -> x | None -> 0.0 in
  check "cycles ran" true (v "cycles" > 0.0);
  (* Copying is opportunistic: sparse blocks may already have emptied via
     the cset without live objects to move, so only demand the counter
     exists and never regresses. *)
  check "copied bytes tracked" true (v "copied_bytes" >= 0.0);
  assert_safety env

let test_zgc_refuses_small_heap () =
  let heap = Heap.create (Heap_config.make ~heap_bytes:(1024 * 1024) ()) in
  let sim = Sim.create Cost_model.default in
  check "unsupported" true
    (try
       ignore (Api.create sim heap (Repro_collectors.Registry.find "zgc"));
       false
     with Repro_collectors.Conc_mark_evac.Unsupported _ -> true)

let test_zgc_accepts_large_heap () =
  let env =
    make_env ~heap_kb:(8 * 1024) ~factory:(Repro_collectors.Registry.find "zgc") ()
  in
  let obj = alloc env () in
  Api.set_root env.api 0 obj.id;
  spin env ~bytes:(Heap.total_bytes env.heap / 4);
  check "alive" true (registered env obj.id)

let test_registry_lookup () =
  check "finds g1" true (Repro_collectors.Registry.find "G1" != Repro_collectors.Registry.find "serial");
  check "case insensitive" true
    (Repro_collectors.Registry.find "SHENANDOAH" == Repro_collectors.Registry.find "shenandoah");
  Alcotest.check_raises "unknown" Not_found (fun () ->
      let (_ : Repro_engine.Collector.factory) =
        Repro_collectors.Registry.find "epsilon"
      in
      ());
  check "find_opt hit" true
    (Repro_collectors.Registry.find_opt "journal_rc" <> None);
  check "find_opt miss" true (Repro_collectors.Registry.find_opt "epsilon" = None);
  (match Repro_collectors.Registry.lookup "journal_rk" with
  | Ok _ -> Alcotest.fail "typo resolved"
  | Error m ->
    let contains sub =
      let n = String.length m and k = String.length sub in
      let rec go i = i + k <= n && (String.sub m i k = sub || go (i + 1)) in
      go 0
    in
    check "lookup suggests the near-miss" true (contains "journal_rc");
    check "lookup lists the known names" true (contains "known:"));
  (match
     Repro_collectors.Registry.lookup
       ~extra:[ ("x", Repro_collectors.Registry.find "semispace") ]
       "x"
   with
  | Ok _ -> ()
  | Error m -> Alcotest.failf "extra factory not found: %s" m);
  Alcotest.(check int) "eight collectors" 8 (List.length Repro_collectors.Registry.all)

let test_read_barrier_costs () =
  (* Concurrent copying collectors levy a per-load cost; STW ones don't. *)
  let collector_of name =
    let heap = Heap.create (Heap_config.make ~heap_bytes:(8 * 1024 * 1024) ()) in
    let sim = Sim.create Cost_model.default in
    Api.collector (Api.create sim heap (Repro_collectors.Registry.find name))
  in
  check "shenandoah lvb" true ((collector_of "shenandoah").Collector.read_extra_ns > 0.0);
  check "zgc lvb" true ((collector_of "zgc").Collector.read_extra_ns > 0.0);
  check "serial no rb" true ((collector_of "serial").Collector.read_extra_ns = 0.0);
  check "g1 no rb" true ((collector_of "g1").Collector.read_extra_ns = 0.0)

let suite =
  let lifecycle =
    List.map
      (fun (name, f) ->
        Alcotest.test_case (name ^ " lifecycle") `Quick (lifecycle_scenario f))
      factories
  in
  let random =
    List.concat_map
      (fun (name, f) ->
        [ Alcotest.test_case (name ^ " random ops s1") `Quick (random_ops f 101);
          Alcotest.test_case (name ^ " random ops s2") `Quick (random_ops f 202) ])
      factories
  in
  [ ("collectors:lifecycle", lifecycle);
    ("collectors:random", random);
    ( "collectors:contracts",
      [ Alcotest.test_case "semispace copies" `Quick test_semispace_copies_survivors;
        Alcotest.test_case "g1 promotes" `Quick test_g1_promotes_survivors;
        Alcotest.test_case "g1 remembered set" `Quick test_g1_old_to_young_remembered;
        Alcotest.test_case "shenandoah cycle stats" `Quick test_shenandoah_stats_move;
        Alcotest.test_case "zgc min heap" `Quick test_zgc_refuses_small_heap;
        Alcotest.test_case "zgc large heap" `Quick test_zgc_accepts_large_heap;
        Alcotest.test_case "registry" `Quick test_registry_lookup;
        Alcotest.test_case "read barriers" `Quick test_read_barrier_costs;
        Alcotest.test_case "journal_rc exact counts s1" `Quick
          (journal_rc_exact_counts 11);
        Alcotest.test_case "journal_rc exact counts s2" `Quick
          (journal_rc_exact_counts 22) ] ) ]
