(* Tests for the distilled-cost subsystem (lib/distill + the ideal
   baseline), the online policy controllers (lib/policy), the
   Lxr_config knob table, and the two adversarial workloads. *)

module Distill = Repro_distill.Distill
module Controller = Repro_policy.Controller
module Config = Repro_lxr.Lxr_config
module Runner = Repro_harness.Runner
module Registry = Repro_collectors.Registry

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let bench = Repro_mutator.Benchmarks.find

let corpus =
  [ "corpus/lusearch.lxrtrace"; "corpus/luindex.lxrtrace";
    "corpus/xalan.lxrtrace" ]

let load path =
  match Repro_trace.Trace_format.of_file path with
  | Ok t -> t
  | Error msg -> Alcotest.failf "trace %s failed to load: %s" path msg

let find_factory name =
  match Repro_harness.Collector_set.find name with
  | Ok f -> f
  | Error msg -> Alcotest.fail msg

(* Every costed lane the differ also exercises, plus LXR. *)
let lanes = "lxr" :: List.map fst Registry.all

(* Replays are deterministic, so memoize (trace, collector) across the
   exhaustive sweep and the qcheck property. *)
let replay_tbl : (string * string, Runner.result) Hashtbl.t =
  Hashtbl.create 64

let replay path name =
  match Hashtbl.find_opt replay_tbl (path, name) with
  | Some r -> r
  | None ->
    let r =
      Runner.replay ~trace:(load path) ~factory:(find_factory name) ()
    in
    Hashtbl.add replay_tbl (path, name) r;
    r

let distilled path name =
  let real = replay path name in
  let ideal = replay path "ideal" in
  if real.ok && ideal.ok then
    Some
      (Distill.make
         ~real:(Repro_harness.Report.to_distill_run real)
         ~ideal:(Repro_harness.Report.to_distill_run ideal))
  else None

(* --- Ideal baseline ----------------------------------------------------- *)

let test_ideal_is_free () =
  let r =
    Runner.run ~seed:7 ~scale:0.2 ~workload:(bench "lusearch")
      ~factory:(find_factory "ideal") ~heap_factor:1.5 ()
  in
  check "ideal run succeeds" true r.ok;
  check "ideal charges no GC CPU" true (r.gc_cpu_ns = 0.0);
  check "ideal has no pauses" true
    (r.stw_wall_ns = 0.0 && r.pause_count = 0);
  check "ideal has no barrier cost" true (r.barrier_cpu_ns = 0.0)

let test_ideal_registered_not_in_all () =
  check "ideal resolves" true (Registry.find_opt "ideal" <> None);
  check "ideal not in the evaluation matrix" true
    (not (List.mem_assoc "ideal" Registry.all));
  check "ideal excluded from lockstep" false (Registry.lockstep_ok "ideal");
  check "real collectors lockstep" true (Registry.lockstep_ok "lxr")

(* --- Distilled-cost bounds over the corpus ------------------------------- *)

let bounds_hold (d : Distill.t) =
  d.distilled_wall_ns >= 0.0
  && d.distilled_wall_ns <= d.real.wall_ns
  && d.distilled_cpu_ns >= 0.0
  && d.distilled_cpu_ns <= Distill.total_cpu d.real
  && d.distilled_stall_ns >= 0.0
  && d.barrier_ns >= 0.0

let test_corpus_bounds () =
  let checked = ref 0 in
  List.iter
    (fun path ->
      List.iter
        (fun name ->
          match distilled path name with
          | None -> () (* a refused heap is data, not a bounds violation *)
          | Some d ->
            incr checked;
            if not (bounds_hold d) then
              Alcotest.failf "distilled bounds violated for %s on %s" name
                path)
        lanes)
    corpus;
  check "most lanes produced accounting" true (!checked >= 20)

let prop_distilled_bounds =
  QCheck.Test.make ~name:"distilled cost in [0, total] on corpus lanes"
    ~count:60
    QCheck.(pair (int_bound (List.length corpus - 1))
              (int_bound (List.length lanes - 1)))
    (fun (ti, ci) ->
      let path = List.nth corpus ti in
      let name = List.nth lanes ci in
      match distilled path name with
      | None -> true
      | Some d -> bounds_hold d)

(* --- Knob table --------------------------------------------------------- *)

let probe () =
  Config.scaled_default ~heap_bytes:(32 * 1024 * 1024) ~block_bytes:32768

let test_knob_override () =
  (match Config.apply_override (probe ()) "wastage_threshold=0.1" with
  | Ok c -> check "float knob applied" true (c.Config.wastage_threshold = 0.1)
  | Error e -> Alcotest.fail e);
  (match Config.apply_override (probe ()) "evacuate_young=off" with
  | Ok c -> check "bool knob applied" false c.Config.evacuate_young
  | Error e -> Alcotest.fail e);
  (match Config.apply_override (probe ()) "increment_threshold=0" with
  | Ok c ->
    check "0 disables an optional trigger" true
      (c.Config.increment_threshold = None)
  | Error e -> Alcotest.fail e);
  match Config.apply_override (probe ()) "max_evac_targets=12" with
  | Ok c -> check_int "int knob applied" 12 c.Config.max_evac_targets
  | Error e -> Alcotest.fail e

let test_knob_validation () =
  (match Config.apply_override (probe ()) "wastage_treshold=0.1" with
  | Ok _ -> Alcotest.fail "typo accepted"
  | Error e ->
    let contains s sub =
      let n = String.length s and m = String.length sub in
      let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
      go 0
    in
    check "did-you-mean hint" true (contains e "wastage_threshold"));
  (match Config.apply_override (probe ()) "wastage_threshold=5.0" with
  | Ok _ -> Alcotest.fail "out-of-range accepted"
  | Error _ -> ());
  (match Config.apply_override (probe ()) "wastage_threshold" with
  | Ok _ -> Alcotest.fail "missing '=' accepted"
  | Error _ -> ());
  match Config.apply_override (probe ()) "max_evac_targets=lots" with
  | Ok _ -> Alcotest.fail "non-numeric accepted"
  | Error _ -> ()

let test_knob_setters_clamp () =
  List.iter
    (fun (k : Config.knob) ->
      let c = k.Config.k_set (probe ()) (k.Config.k_hi +. 1e9) in
      let v = k.Config.k_get c in
      if not (v >= k.Config.k_lo -. 1e-9 && v <= k.Config.k_hi +. 1e-9) then
        Alcotest.failf "%s escaped its range: %g" k.Config.k_name v)
    Config.knobs

let test_resolve_guards () =
  (match Repro_harness.Collector_set.resolve ~knobs:[ "wastage_threshold=0.1" ] "g1" with
  | Ok _ -> Alcotest.fail "--lxr-knob accepted for g1"
  | Error _ -> ());
  (match Repro_harness.Collector_set.resolve ~controller:"hill" "g1" with
  | Ok _ -> Alcotest.fail "--controller accepted for g1"
  | Error _ -> ());
  match Repro_harness.Collector_set.resolve ~controller:"hill" ~knobs:[ "wastage_threshold=0.1" ] "lxr" with
  | Ok _ -> ()
  | Error e -> Alcotest.fail e

(* --- Controller spec parsing -------------------------------------------- *)

let test_controller_parse () =
  (match Controller.parse "hill:seed=7,window=4" with
  | Ok s ->
    check "algo" true (s.Controller.algo = Controller.Hill);
    check_int "seed" 7 s.Controller.seed;
    check_int "window" 4 s.Controller.window
  | Error e -> Alcotest.fail e);
  (match Controller.parse "pid:obj=burn,target=1.5" with
  | Ok s ->
    check "objective" true (s.Controller.objective = Controller.Burn);
    check "target" true (s.Controller.target = 1.5)
  | Error e -> Alcotest.fail e);
  (match Controller.parse "hill:knobs=wastage_threshold+max_evac_targets" with
  | Ok s -> check_int "knob subset" 2 (List.length s.Controller.knobs)
  | Error e -> Alcotest.fail e);
  (match Controller.parse "hilll" with
  | Ok _ -> Alcotest.fail "typo algo accepted"
  | Error _ -> ());
  (match Controller.parse "hill:windw=4" with
  | Ok _ -> Alcotest.fail "typo key accepted"
  | Error _ -> ());
  match Controller.parse "hill:knobs=wastage" with
  | Ok _ -> Alcotest.fail "unknown knob accepted"
  | Error _ -> ()

(* --- Controller determinism --------------------------------------------- *)

let controlled_run ~algo ~gc_threads ~workload =
  let captured = ref None in
  let spec =
    match Controller.parse algo with
    | Ok s -> s
    | Error e -> Alcotest.fail e
  in
  let factory =
    Controller.lxr_factory ~handle:(fun c -> captured := Some c) spec
  in
  let w = { (bench workload) with Repro_mutator.Workload.request = None } in
  let r =
    Runner.run ~seed:11 ~scale:0.5 ~gc_threads ~workload:w ~factory
      ~heap_factor:1.5 ()
  in
  let traj =
    match !captured with
    | Some c -> Controller.trajectory c
    | None -> Alcotest.fail "controller was never instantiated"
  in
  (r, traj)

let test_controller_determinism () =
  List.iter
    (fun algo ->
      let r1, t1 = controlled_run ~algo ~gc_threads:1 ~workload:"fragger" in
      let r4, t4 = controlled_run ~algo ~gc_threads:4 ~workload:"fragger" in
      check (algo ^ " run ok") true (r1.ok && r4.ok);
      check (algo ^ " trajectory nonempty") true (t1 <> []);
      check (algo ^ " knob trajectory bit-identical across gc-threads") true
        (t1 = t4);
      check (algo ^ " metrics bit-identical across gc-threads") true
        (r1.wall_ns = r4.wall_ns && r1.gc_cpu_ns = r4.gc_cpu_ns
        && r1.pause_count = r4.pause_count))
    [ "hill"; "pid" ]

(* --- Controller beats the static configuration --------------------------- *)

let distilled_of_run (real : Runner.result) (ideal : Runner.result) =
  Distill.make
    ~real:(Repro_harness.Report.to_distill_run real)
    ~ideal:(Repro_harness.Report.to_distill_run ideal)

let test_controller_beats_static () =
  let w = { (bench "phaser") with Repro_mutator.Workload.request = None } in
  let run factory =
    Runner.run ~seed:42 ~workload:w ~factory ~heap_factor:1.5 ()
  in
  let ideal = run (find_factory "ideal") in
  let static = run Repro_lxr.Lxr.factory in
  let pid =
    let spec =
      match Controller.parse "pid" with Ok s -> s | Error e -> Alcotest.fail e
    in
    run (Controller.lxr_factory spec)
  in
  check "all contenders ran" true (ideal.ok && static.ok && pid.ok);
  let ds = distilled_of_run static ideal in
  let dp = distilled_of_run pid ideal in
  if not (dp.distilled_wall_ns < ds.distilled_wall_ns) then
    Alcotest.failf
      "PID controller did not beat static LXR on phaser: %.0f >= %.0f ns"
      dp.distilled_wall_ns ds.distilled_wall_ns

(* --- Adversarial workloads ---------------------------------------------- *)

let test_adversaries_registered () =
  let fragger = bench "fragger" in
  let phaser = bench "phaser" in
  check "fragger interleaves size classes" true
    (fragger.Repro_mutator.Workload.frag_classes <> []);
  check "phaser phases" true (phaser.Repro_mutator.Workload.phase_allocs > 0);
  (* Neutral defaults elsewhere: the adversary fields must not perturb
     the PRNG streams of the existing zoo. *)
  List.iter
    (fun (w : Repro_mutator.Workload.t) ->
      if w.name <> "fragger" && w.name <> "phaser" then begin
        check (w.name ^ " has no frag classes") true (w.frag_classes = []);
        check (w.name ^ " does not phase") true (w.phase_allocs = 0)
      end)
    Repro_mutator.Benchmarks.all

let test_adversaries_run () =
  List.iter
    (fun name ->
      let r =
        Runner.run ~seed:5 ~scale:0.2 ~workload:(bench name)
          ~factory:Repro_lxr.Lxr.factory ~heap_factor:2.0 ()
      in
      check (name ^ " runs under LXR") true r.ok;
      check (name ^ " allocates") true (r.alloc_count > 1000))
    [ "fragger"; "phaser" ]

let suite =
  [ ( "distill",
      [ Alcotest.test_case "ideal baseline is free" `Quick test_ideal_is_free;
        Alcotest.test_case "ideal registration" `Quick
          test_ideal_registered_not_in_all;
        Alcotest.test_case "corpus distilled bounds (exhaustive)" `Slow
          test_corpus_bounds;
        QCheck_alcotest.to_alcotest prop_distilled_bounds ] );
    ( "policy",
      [ Alcotest.test_case "knob overrides" `Quick test_knob_override;
        Alcotest.test_case "knob validation" `Quick test_knob_validation;
        Alcotest.test_case "knob setters clamp" `Quick
          test_knob_setters_clamp;
        Alcotest.test_case "resolve guards" `Quick test_resolve_guards;
        Alcotest.test_case "controller spec parsing" `Quick
          test_controller_parse;
        Alcotest.test_case "controller determinism across gc-threads" `Slow
          test_controller_determinism;
        Alcotest.test_case "controller beats static on an adversary" `Slow
          test_controller_beats_static ] );
    ( "adversaries",
      [ Alcotest.test_case "registration and neutral defaults" `Quick
          test_adversaries_registered;
        Alcotest.test_case "smoke under LXR" `Quick test_adversaries_run ] )
  ]
