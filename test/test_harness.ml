(* Tests for the runner, the LBO methodology, and the experiment
   generators (smoke-level, tiny scales). *)

open Repro_harness

let check = Alcotest.(check bool)
let check_float = Alcotest.(check (float 1e-9))

let small_run ?(collector = Repro_lxr.Lxr.factory) ?(factor = 2.0) name =
  Runner.run ~seed:5 ~scale:0.03 ~workload:(Repro_mutator.Benchmarks.find name)
    ~factory:collector ~heap_factor:factor ()

(* --- Runner -------------------------------------------------------------------- *)

let test_runner_result_fields () =
  let r = small_run "fop" in
  check "ok" true r.ok;
  check "collector name" true (r.collector = "LXR");
  check "workload name" true (r.workload = "fop");
  check "heap factor recorded" true (r.heap_factor = 2.0);
  check "heap sized" true
    (r.heap_bytes >= (Repro_mutator.Benchmarks.find "fop").Repro_mutator.Workload.min_heap_bytes);
  check "cpu accounted" true (r.mutator_cpu_ns > 0.0);
  check "stats exported" true (List.length r.collector_stats > 0)

let test_runner_stat_lookup () =
  let r = small_run "fop" in
  check "present stat" true (Runner.stat r "rc_pauses" >= 0.0);
  check_float "missing stat is zero" 0.0 (Runner.stat r "no_such_counter")

let test_runner_unsupported () =
  let r = small_run ~collector:(Repro_collectors.Registry.find "zgc") "avrora" in
  check "not ok" true (not r.ok);
  check "error recorded" true (r.error <> None);
  check_float "qps zero on failure" 0.0 (Runner.qps r)

let test_runner_heap_config_override () =
  let r =
    Runner.run ~seed:5 ~scale:0.03
      ~heap_config:(fun ~heap_bytes ->
        Repro_heap.Heap_config.make ~block_bytes:(16 * 1024) ~heap_bytes ())
      ~workload:(Repro_mutator.Benchmarks.find "fop")
      ~factory:Repro_lxr.Lxr.factory ~heap_factor:2.0 ()
  in
  check "runs with 16K blocks" true r.ok

let test_runner_qps () =
  let r = small_run "lusearch" in
  check "latency workload has qps" true (Runner.qps r > 0.0)

(* --- LBO ------------------------------------------------------------------------- *)

let fake_result ~wall ~stw ~mcpu ~gcpu ~stwcpu ~ok : Runner.result =
  { workload = "w"; collector = "c"; heap_factor = 2.0; heap_bytes = 0;
    ok; error = None;
    wall_ns = wall; mutator_cpu_ns = mcpu; gc_cpu_ns = gcpu;
    stw_wall_ns = stw; stw_cpu_ns = stwcpu;
    alloc_stall_ns = 0.0; barrier_cpu_ns = 0.0;
    pause_count = 0; pauses = Repro_util.Histogram.create ();
    latency = None; requests = 0; alloc_bytes = 0; alloc_count = 0;
    survived_bytes = 0; large_bytes = 0; collector_stats = [];
    ladder = []; violations = []; verifier_checks = 0 }

let test_lbo_values () =
  let r = fake_result ~wall:110.0 ~stw:10.0 ~mcpu:200.0 ~gcpu:50.0 ~stwcpu:30.0 ~ok:true in
  check_float "wall metric" 110.0 (Lbo.value Lbo.Wall r);
  check_float "cycles metric" 250.0 (Lbo.value Lbo.Cycles r)

let test_lbo_baseline () =
  let a = fake_result ~wall:110.0 ~stw:10.0 ~mcpu:0.0 ~gcpu:0.0 ~stwcpu:0.0 ~ok:true in
  let b = fake_result ~wall:150.0 ~stw:60.0 ~mcpu:0.0 ~gcpu:0.0 ~stwcpu:0.0 ~ok:true in
  (* Baselines subtract STW costs: min(100, 90) = 90. *)
  (match Lbo.baseline Lbo.Wall [ a; b ] with
  | Some base -> check_float "stripped minimum" 90.0 base
  | None -> Alcotest.fail "baseline exists");
  let failed = fake_result ~wall:0.0 ~stw:0.0 ~mcpu:0.0 ~gcpu:0.0 ~stwcpu:0.0 ~ok:false in
  check "failures ignored" true (Lbo.baseline Lbo.Wall [ failed ] = None)

let test_lbo_overhead () =
  let r = fake_result ~wall:120.0 ~stw:20.0 ~mcpu:0.0 ~gcpu:0.0 ~stwcpu:0.0 ~ok:true in
  (match Lbo.overhead Lbo.Wall ~baseline:100.0 r with
  | Some o -> check_float "ratio" 1.2 o
  | None -> Alcotest.fail "overhead exists");
  let failed = fake_result ~wall:0.0 ~stw:0.0 ~mcpu:0.0 ~gcpu:0.0 ~stwcpu:0.0 ~ok:false in
  check "failed run" true (Lbo.overhead Lbo.Wall ~baseline:100.0 failed = None)

let test_lbo_overhead_at_least_one_on_baseline_run () =
  (* The run that produced the baseline has overhead >= 1 by construction. *)
  let a = fake_result ~wall:110.0 ~stw:10.0 ~mcpu:0.0 ~gcpu:0.0 ~stwcpu:0.0 ~ok:true in
  match Lbo.baseline Lbo.Wall [ a ] with
  | Some base ->
    (match Lbo.overhead Lbo.Wall ~baseline:base a with
    | Some o -> check "o >= 1" true (o >= 1.0)
    | None -> Alcotest.fail "overhead")
  | None -> Alcotest.fail "baseline"

(* --- Experiments (smoke) ------------------------------------------------------------ *)

let tiny = { Experiments.scale = 0.02; iterations = 1; seed = 9 }

let test_experiment_names () =
  Alcotest.(check int) "fourteen experiments" 14 (List.length Experiments.names);
  List.iter
    (fun n -> check (n ^ " resolvable") true (Experiments.by_name n <> None))
    Experiments.names;
  check "unknown" true (Experiments.by_name "table9" = None)

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  go 0

let test_table1_smoke () =
  let s = Experiments.table1 tiny in
  check "mentions lusearch" true (contains s "lusearch");
  check "has shenandoah 10x row" true (contains s "Shenandoah 10x")

let test_table3_smoke () =
  let s = Experiments.table3 tiny in
  List.iter
    (fun n -> check ("row " ^ n) true (contains s n))
    [ "cassandra"; "xalan"; "zxing" ]

let test_sensitivity_smoke () =
  (* Run the cheapest structural check: the experiment renders with the
     expected configuration rows. Uses a tiny scale to stay fast. *)
  let s = Experiments.sensitivity { tiny with scale = 0.01 } in
  check "block sizes" true (contains s "64 KB blocks");
  check "rc bits" true (contains s "8 RC bits");
  check "buffer" true (contains s "128-entry buffer");
  check "ablation" true (contains s "fixed allocation trigger")

let suite =
  [ ( "harness:runner",
      [ Alcotest.test_case "result fields" `Quick test_runner_result_fields;
        Alcotest.test_case "stat lookup" `Quick test_runner_stat_lookup;
        Alcotest.test_case "unsupported" `Quick test_runner_unsupported;
        Alcotest.test_case "heap override" `Quick test_runner_heap_config_override;
        Alcotest.test_case "qps" `Quick test_runner_qps ] );
    ( "harness:lbo",
      [ Alcotest.test_case "values" `Quick test_lbo_values;
        Alcotest.test_case "baseline" `Quick test_lbo_baseline;
        Alcotest.test_case "overhead" `Quick test_lbo_overhead;
        Alcotest.test_case "baseline bound" `Quick test_lbo_overhead_at_least_one_on_baseline_run ] );
    ( "harness:experiments",
      [ Alcotest.test_case "names" `Quick test_experiment_names;
        Alcotest.test_case "table1" `Slow test_table1_smoke;
        Alcotest.test_case "table3" `Slow test_table3_smoke;
        Alcotest.test_case "sensitivity" `Slow test_sensitivity_smoke ] ) ]
