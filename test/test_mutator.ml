(* Tests for the workload models and the generative mutator. *)

open Repro_mutator

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* --- Benchmark table --------------------------------------------------------- *)

let test_benchmark_inventory () =
  (* 17 DaCapo-like workloads + the synthetic adversaries: jflood,
     fragger, phaser. *)
  check_int "20 benchmarks" 20 (List.length Benchmarks.all);
  check_int "5 latency-sensitive" 5 (List.length Benchmarks.latency_sensitive);
  let latency_names =
    List.map (fun w -> w.Workload.name) Benchmarks.latency_sensitive
  in
  List.iter
    (fun n -> check (n ^ " is latency-sensitive") true (List.mem n latency_names))
    [ "cassandra"; "h2"; "lusearch"; "tomcat" ]

let test_benchmark_find () =
  let w = Benchmarks.find "lusearch" in
  check "name" true (w.Workload.name = "lusearch");
  check "request model" true (w.request <> None);
  check "fails on unknown" true
    (try ignore (Benchmarks.find "nope"); false with Not_found -> true)

let test_benchmark_invariants () =
  List.iter
    (fun (w : Workload.t) ->
      let n = w.name in
      check (n ^ " heap positive") true (w.min_heap_bytes >= 1024 * 1024);
      check (n ^ " alloc exceeds heap slack") true
        (w.total_alloc_bytes > w.min_heap_bytes);
      check (n ^ " rate positive") true (w.alloc_rate_mb_s > 0.0);
      check (n ^ " object size sane") true
        (w.mean_object_bytes >= 16 && w.mean_object_bytes <= 512);
      check (n ^ " fractions in range") true
        (w.large_fraction >= 0.0 && w.large_fraction <= 1.0
        && w.survival_rate >= 0.0 && w.survival_rate <= 1.0);
      match w.request with
      | None -> ()
      | Some r ->
        check (n ^ " request count") true (r.count > 0);
        check (n ^ " utilization") true
          (r.target_utilization > 0.0 && r.target_utilization < 1.0))
    Benchmarks.all

let test_benchmark_paper_ordering () =
  (* The published orderings the workloads must preserve. *)
  let heap n = (Benchmarks.find n).Workload.min_heap_bytes in
  check "lusearch smaller than h2" true (heap "lusearch" < heap "h2");
  check "avrora smallest" true
    (List.for_all (fun (w : Workload.t) -> heap "avrora" <= w.min_heap_bytes)
       Benchmarks.all);
  let srv n = (Benchmarks.find n).Workload.survival_rate in
  check "batik most survival" true
    (List.for_all (fun (w : Workload.t) -> srv "batik" >= w.survival_rate)
       Benchmarks.all);
  check "lusearch low survival" true (srv "lusearch" <= 0.02);
  check "avrora has the live list" true
    ((Benchmarks.find "avrora").Workload.linked_list_len > 1000)

let test_extra_work_scaling () =
  let w = Benchmarks.find "avrora" in
  (* avrora is compute-bound: big extra work per byte. *)
  check "slow workload works" true (Workload.extra_work_ns w ~size:64 > 500.0);
  let fast = Benchmarks.find "lusearch" in
  (* lusearch is allocation-bound: intrinsic costs dominate. *)
  check "fast workload no padding" true (Workload.extra_work_ns fast ~size:97 < 20.0)

let test_nominal_service () =
  let w = Benchmarks.find "cassandra" in
  match w.Workload.request with
  | None -> Alcotest.fail "cassandra has requests"
  | Some r ->
    let s = Workload.nominal_service_ns w r in
    check "service includes intrinsic work" true (s > r.work_ns_per_request)

(* --- Running the engine ------------------------------------------------------- *)

let run_small ?(factory = Repro_lxr.Lxr.factory) name =
  let w = Benchmarks.find name in
  Repro_harness.Runner.run ~seed:7 ~scale:0.05 ~workload:w ~factory ~heap_factor:2.0 ()

let test_throughput_workload_runs () =
  let r = run_small "sunflow" in
  check "ok" true r.ok;
  check "allocated the scaled budget" true
    (r.alloc_bytes >= (Benchmarks.find "sunflow").Workload.total_alloc_bytes / 25);
  check "no latency histogram" true (r.latency = None);
  check "wall time advanced" true (r.wall_ns > 0.0)

let test_latency_workload_runs () =
  let r = run_small "lusearch" in
  check "ok" true r.ok;
  (match r.latency with
  | Some h -> check "latency samples = requests" true (Repro_util.Histogram.count h = r.requests)
  | None -> Alcotest.fail "latency histogram expected");
  check "qps positive" true (Repro_harness.Runner.qps r > 0.0)

let test_survival_tracking () =
  let r = run_small "batik" in
  let measured =
    Float.of_int r.survived_bytes /. Float.of_int (max 1 r.alloc_bytes)
  in
  (* batik's configured survival is 51%; the measured insertion rate
     should be in the same region (cyclic partners inflate it a bit). *)
  check "high survival measured" true (measured > 0.3);
  let r2 = run_small "jython" in
  let measured2 =
    Float.of_int r2.survived_bytes /. Float.of_int (max 1 r2.alloc_bytes)
  in
  check "low survival measured" true (measured2 < 0.08)

let test_large_object_tracking () =
  let r = run_small "luindex" in
  let frac = Float.of_int r.large_bytes /. Float.of_int (max 1 r.alloc_bytes) in
  check "luindex mostly large bytes" true (frac > 0.4);
  let r2 = run_small "cassandra" in
  let frac2 = Float.of_int r2.large_bytes /. Float.of_int (max 1 r2.alloc_bytes) in
  check "cassandra no large bytes" true (frac2 < 0.05)

let test_deterministic_runs () =
  let w = Benchmarks.find "fop" in
  let run () =
    Repro_harness.Runner.run ~seed:11 ~scale:0.05 ~workload:w
      ~factory:Repro_lxr.Lxr.factory ~heap_factor:2.0 ()
  in
  let a = run () and b = run () in
  check "same wall" true (a.wall_ns = b.wall_ns);
  check_int "same pauses" a.pause_count b.pause_count;
  check_int "same allocs" a.alloc_count b.alloc_count

let test_different_seeds_differ () =
  let w = Benchmarks.find "fop" in
  let run seed =
    Repro_harness.Runner.run ~seed ~scale:0.05 ~workload:w
      ~factory:Repro_lxr.Lxr.factory ~heap_factor:2.0 ()
  in
  let a = run 1 and b = run 2 in
  check "different streams" true (a.alloc_count <> b.alloc_count || a.wall_ns <> b.wall_ns)

let test_all_benchmarks_run_under_lxr () =
  List.iter
    (fun (w : Workload.t) ->
      let r =
        Repro_harness.Runner.run ~seed:3 ~scale:0.02 ~workload:w
          ~factory:Repro_lxr.Lxr.factory ~heap_factor:2.0 ()
      in
      check (w.name ^ " runs") true r.ok)
    Benchmarks.all

let suite =
  [ ( "mutator:benchmarks",
      [ Alcotest.test_case "inventory" `Quick test_benchmark_inventory;
        Alcotest.test_case "find" `Quick test_benchmark_find;
        Alcotest.test_case "invariants" `Quick test_benchmark_invariants;
        Alcotest.test_case "paper orderings" `Quick test_benchmark_paper_ordering;
        Alcotest.test_case "extra work" `Quick test_extra_work_scaling;
        Alcotest.test_case "nominal service" `Quick test_nominal_service ] );
    ( "mutator:engine",
      [ Alcotest.test_case "throughput mode" `Quick test_throughput_workload_runs;
        Alcotest.test_case "latency mode" `Quick test_latency_workload_runs;
        Alcotest.test_case "survival tracking" `Quick test_survival_tracking;
        Alcotest.test_case "large objects" `Quick test_large_object_tracking;
        Alcotest.test_case "deterministic" `Quick test_deterministic_runs;
        Alcotest.test_case "seed sensitivity" `Quick test_different_seeds_differ;
        Alcotest.test_case "all benchmarks (LXR)" `Slow test_all_benchmarks_run_under_lxr ] ) ]
