(* Tests for the work-packet scheduler: partition coverage (property),
   ordered-merge determinism across real worker domains (force_spawn
   lifts the single-core cap so CI actually crosses domains), exception
   propagation, BFS drain rounds, and the end-to-end gc-threads
   determinism matrix: every corpus trace replayed at --gc-threads=1 and
   =4 must produce bit-identical metrics, record-of-replay bytes and
   differ checkpoints. *)

module Par = Repro_par.Par

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* --- partition: every entry exactly once ------------------------------- *)

let packet_sizes = [ 1; 7; Par.blocks_per_packet; Par.queue_per_packet ]

let test_partition_property =
  QCheck.Test.make ~name:"packet partition covers every entry exactly once"
    ~count:300
    QCheck.(pair (int_range 0 5000) (int_range 0 3))
    (fun (total, size_ix) ->
      let packet = List.nth packet_sizes size_ix in
      let n = Par.packet_count ~total ~packet in
      (* Cover [0, total) by walking the spans in index order; each must
         start where the previous ended (no gap, no overlap). *)
      let next = ref 0 in
      for i = 0 to n - 1 do
        let lo, len = Par.span ~total ~packet i in
        if lo <> !next then QCheck.Test.fail_reportf "packet %d: lo=%d, expected %d" i lo !next;
        if len < 1 || len > packet then
          QCheck.Test.fail_reportf "packet %d: len=%d out of [1, %d]" i len packet;
        if i < n - 1 && len <> packet then
          QCheck.Test.fail_reportf "packet %d ragged but not last (len=%d)" i len;
        next := lo + len
      done;
      !next = total && (total > 0 || n = 0))

let test_map_spans_covers () =
  (* Same property through the map_spans driver: mark each item once. *)
  List.iter
    (fun packet ->
      List.iter
        (fun total ->
          let hits = Bytes.make (max total 1) '\000' in
          Par.map_spans Par.Pool.serial ~total ~packet
            ~f:(fun _ ~lo ~len -> (lo, len))
            ~merge:(fun _ (lo, len) ->
              for i = lo to lo + len - 1 do
                Bytes.set hits i (Char.chr (Char.code (Bytes.get hits i) + 1))
              done);
          for i = 0 to total - 1 do
            check_int
              (Printf.sprintf "total=%d packet=%d item %d" total packet i)
              1
              (Char.code (Bytes.get hits i))
          done)
        [ 0; 1; 6; 7; 8; 100; 1023 ])
    packet_sizes

(* --- ordered merge across real domains --------------------------------- *)

(* A pool that genuinely crosses domains even on a single-core CI host. *)
let with_spawned_pool f =
  let pool = Par.Pool.create ~force_spawn:true ~threads:4 () in
  check "force_spawn spawned workers" true (Par.Pool.workers pool = 3);
  Fun.protect ~finally:(fun () -> Par.Pool.shutdown pool) (fun () -> f pool)

let merge_transcript pool ~packets =
  (* f returns a pure function of the packet index; the transcript of
     merge calls must come back in ascending index order regardless of
     which domain ran which packet. *)
  let log = ref [] in
  Par.map_merge pool ~packets
    ~f:(fun i -> i * i)
    ~merge:(fun i v -> log := (i, v) :: !log);
  List.rev !log

let test_merge_order_matches_serial () =
  with_spawned_pool (fun pool ->
      List.iter
        (fun packets ->
          let serial = merge_transcript Par.Pool.serial ~packets in
          let parallel = merge_transcript pool ~packets in
          check
            (Printf.sprintf "%d packets: parallel merge = serial merge" packets)
            true (serial = parallel);
          check_int "all packets merged" packets (List.length parallel))
        [ 0; 1; 2; 3; 16; 257 ])

let test_exception_lowest_index_first () =
  with_spawned_pool (fun pool ->
      let merged = ref [] in
      let seen =
        try
          Par.map_merge pool ~packets:64
            ~f:(fun i -> if i = 9 || i = 41 then failwith (string_of_int i) else i)
            ~merge:(fun i _ -> merged := i :: !merged);
          None
        with Failure msg -> Some msg
      in
      (* Both packets 9 and 41 raise; the re-raise must pick the lowest
         index, and merges stop there — packets 0-8 merged, nothing after. *)
      check "raised" true (seen = Some "9");
      check "merged prefix before the failing packet" true
        (List.rev !merged = [ 0; 1; 2; 3; 4; 5; 6; 7; 8 ]))

let test_nested_runs_inline () =
  with_spawned_pool (fun pool ->
      (* A packet body that re-enters the pool must run inline rather than
         deadlock; the nested phase still merges in order. *)
      let out = ref [] in
      Par.map_merge pool ~packets:4
        ~f:(fun i ->
          let inner = ref 0 in
          Par.map_merge pool ~packets:3
            ~f:(fun j -> j + 1)
            ~merge:(fun _ v -> inner := (10 * !inner) + v);
          (i, !inner))
        ~merge:(fun _ v -> out := v :: !out);
      check "nested phases completed deterministically" true
        (List.rev !out = [ (0, 123); (1, 123); (2, 123); (3, 123) ]))

let test_drain_rounds_deterministic () =
  (* BFS over a synthetic graph: node i points at 2i+1 and 2i+2 below a
     bound. The visit transcript must be identical on the serial pool
     and across real domains, and on_round must see shrinking frontiers
     of the exact BFS level sizes. *)
  let bound = 3000 in
  let run pool =
    let visits = ref [] and rounds = ref [] in
    let seen = Bytes.make bound '\000' in
    let frontier = Repro_util.Vec.create () in
    Repro_util.Vec.push frontier 0;
    Bytes.set seen 0 '\001';
    Par.drain_rounds pool ~packet:7 ~frontier
      ~on_round:(fun n -> rounds := n :: !rounds)
      ~scan:(fun id out ->
        Repro_util.Vec.push out id;
        let k1 = (2 * id) + 1 and k2 = (2 * id) + 2 in
        Repro_util.Vec.push out (if k1 < bound then k1 else -1);
        Repro_util.Vec.push out (if k2 < bound then k2 else -1))
      ~merge:(fun out next ->
        let i = ref 0 in
        while !i < Repro_util.Vec.length out do
          let id = Repro_util.Vec.get out !i in
          visits := id :: !visits;
          List.iter
            (fun k ->
              if k >= 0 && Bytes.get seen k = '\000' then begin
                Bytes.set seen k '\001';
                Repro_util.Vec.push next k
              end)
            [ Repro_util.Vec.get out (!i + 1); Repro_util.Vec.get out (!i + 2) ];
          i := !i + 3
        done);
    (List.rev !visits, List.rev !rounds)
  in
  let sv, sr = run Par.Pool.serial in
  check_int "every node visited" bound (List.length sv);
  check "rounds are BFS level sizes" true
    (List.length sr >= 2 && List.hd sr = 1 && List.nth sr 1 = 2);
  with_spawned_pool (fun pool ->
      let pv, pr = run pool in
      check "visit order identical across domains" true (sv = pv);
      check "round sizes identical" true (sr = pr))

(* --- gc-threads determinism matrix ------------------------------------- *)

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let load path =
  match Repro_trace.Trace_format.of_file path with
  | Ok t -> t
  | Error msg -> Alcotest.failf "trace %s failed to load: %s" path msg

let corpus_files () =
  Sys.readdir "corpus" |> Array.to_list
  |> List.filter (fun f -> Filename.check_suffix f ".lxrtrace")
  |> List.sort compare
  |> List.map (Filename.concat "corpus")

let test_matrix_replay () =
  (* Acceptance gate: every corpus trace, every collector lane, replayed
     at gc-threads 1 and 4 — metrics records and record-of-replay bytes
     must be bit-identical. *)
  List.iter
    (fun path ->
      let trace = load path in
      List.iter
        (fun name ->
          let factory =
            match Repro_harness.Collector_set.find name with
            | Ok f -> f
            | Error m -> Alcotest.fail m
          in
          let tmp g =
            Filename.concat (Filename.get_temp_dir_name ())
              (Printf.sprintf "matrix_%s_%s_g%d.lxrtrace"
                 (Filename.basename path) name g)
          in
          let r1 =
            Repro_harness.Runner.replay ~gc_threads:1 ~record_to:(tmp 1)
              ~trace ~factory ()
          in
          let r4 =
            Repro_harness.Runner.replay ~gc_threads:4 ~record_to:(tmp 4)
              ~trace ~factory ()
          in
          let label = Printf.sprintf "%s/%s" (Filename.basename path) name in
          check (label ^ ": whole result record identical") true
            ({ r1 with latency = None } = { r4 with latency = None });
          check (label ^ ": latency presence identical") true
            (Option.is_some r1.latency = Option.is_some r4.latency);
          check (label ^ ": record-of-replay bytes identical") true
            (read_file (tmp 1) = read_file (tmp 4)))
        [ "lxr"; "g1"; "shenandoah"; "journal_rc" ])
    (corpus_files ())

let test_matrix_differ () =
  (* The differ's per-checkpoint oracle state must agree too: a
     gc-threads=4 diff of each corpus trace stays divergence-free and
     runs the same number of checkpoints as gc-threads=1. *)
  let lanes =
    List.map
      (fun n ->
        (n, Option.get (Repro_harness.Collector_set.find n |> Result.to_option)))
      [ "lxr"; "g1"; "shenandoah"; "journal_rc" ]
  in
  List.iter
    (fun path ->
      let trace = load path in
      let d1 =
        Repro_trace.Differ.run ~gc_threads:1 ~trace ~collectors:lanes ()
      in
      let d4 =
        Repro_trace.Differ.run ~gc_threads:4 ~trace ~collectors:lanes ()
      in
      let label = Filename.basename path in
      check_int (label ^ ": divergence-free at 4 lanes") 0 d4.total_divergences;
      check_int (label ^ ": same checkpoints") d1.checkpoints d4.checkpoints;
      check_int (label ^ ": same oracle checks") d1.oracle_checks d4.oracle_checks)
    (corpus_files ())

let suite =
  let qc = List.map QCheck_alcotest.to_alcotest in
  [ ( "par:partition",
      qc [ test_partition_property ]
      @ [ Alcotest.test_case "map_spans covers exactly once" `Quick
            test_map_spans_covers ] );
    ( "par:merge",
      [ Alcotest.test_case "merge order matches serial across domains" `Quick
          test_merge_order_matches_serial;
        Alcotest.test_case "exception re-raised lowest index first" `Quick
          test_exception_lowest_index_first;
        Alcotest.test_case "nested runs go inline" `Quick test_nested_runs_inline;
        Alcotest.test_case "drain_rounds deterministic across domains" `Quick
          test_drain_rounds_deterministic ] );
    ( "par:matrix",
      [ Alcotest.test_case "corpus replay 1 vs 4 bit-identical" `Slow
          test_matrix_replay;
        Alcotest.test_case "corpus differ 1 vs 4 checkpoints agree" `Slow
          test_matrix_differ ] )
  ]
