let () =
  Alcotest.run "lxr-repro"
    (Test_util.suite @ Test_par.suite @ Test_heap.suite @ Test_engine.suite @ Test_lxr.suite @ Test_collectors.suite @ Test_mutator.suite @ Test_harness.suite @ Test_compaction.suite @ Test_integration.suite @ Test_verify.suite @ Test_trace.suite @ Test_service.suite @ Test_distill.suite)
