(* Tests for the to-space reserve and the sliding compactor — the
   machinery that guarantees progress in tight, fragmented heaps. *)

open Repro_heap
open Repro_engine
module Vec = Repro_util.Vec

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let fresh_heap ?(heap_kb = 1024) () =
  Heap.create (Heap_config.make ~heap_bytes:(heap_kb * 1024) ())

(* --- Reserve -------------------------------------------------------------- *)

let test_reserve_roundtrip () =
  let heap = fresh_heap () in
  let total = Heap.available_blocks heap in
  Heap.ensure_reserve heap;
  let withheld = Vec.length heap.reserve in
  check "reserve taken" true (withheld >= 1);
  check_int "blocks withheld from allocation" (total - withheld)
    (Heap.available_blocks heap);
  Vec.iter
    (fun b -> check "reserve state" true (Blocks.state heap.blocks b = Blocks.In_use))
    heap.reserve;
  Heap.release_reserve heap;
  check_int "all returned" total (Heap.available_blocks heap);
  check "reserve empty" true (Vec.is_empty heap.reserve)

let test_reserve_idempotent () =
  let heap = fresh_heap () in
  Heap.ensure_reserve heap;
  let first = Vec.length heap.reserve in
  Heap.ensure_reserve heap;
  check_int "stable size" first (Vec.length heap.reserve)

let test_reserve_scales_down () =
  (* A 4-block heap gets no reserve rather than losing half its space. *)
  let heap = Heap.create (Heap_config.make ~heap_bytes:(4 * 32 * 1024) ()) in
  Heap.ensure_reserve heap;
  check "no reserve on degenerate heaps" true (Vec.is_empty heap.reserve);
  (* A large heap reserves about 1/16. *)
  let big = fresh_heap ~heap_kb:(4 * 1024) () in
  Heap.ensure_reserve big;
  check_int "1/16 of 128 blocks" 8 (Vec.length big.reserve)

let test_reserve_survives_partial_exhaustion () =
  let heap = fresh_heap ~heap_kb:256 () in
  Heap.ensure_reserve heap;
  (* Drain the entire free list. *)
  while Free_lists.acquire_free heap.free <> None do () done;
  Heap.ensure_reserve heap;
  check "reserve kept despite empty free list" true (Vec.length heap.reserve >= 1)

(* --- Compaction ------------------------------------------------------------- *)

(* Build a pathologically fragmented heap: objects pinned live, spread so
   every block is partially occupied, singleton holes everywhere. *)
let fragment heap ~keep_every =
  let a = Heap.make_allocator heap in
  let kept = ref [] in
  let i = ref 0 in
  (try
     while true do
       match Heap.alloc heap a ~size:176 ~nfields:1 with
       | Some obj ->
         incr i;
         if !i mod keep_every = 0 then begin
           Heap.pin heap obj;
           kept := obj :: !kept
         end
         else Heap.free_object heap obj
       | None -> raise Exit
     done
   with Exit -> ());
  Heap.retire_all_allocators heap;
  Compaction.reclassify heap;
  !kept

let test_reclassify () =
  let heap = fresh_heap ~heap_kb:256 () in
  let kept = fragment heap ~keep_every:8 in
  check "live objects kept" true (List.length kept > 50);
  (* After reclassification the states match the RC table. *)
  let cfg = heap.cfg in
  for b = 0 to Heap_config.blocks cfg - 1 do
    match Blocks.state heap.blocks b with
    | Blocks.Free ->
      check "free means zero rc" true (Rc_table.block_is_free heap.rc cfg b)
    | Blocks.Recyclable ->
      check "recyclable has free lines" true
        (Rc_table.free_lines_in_block heap.rc cfg b > 0)
    | Blocks.In_use | Blocks.Owned | Blocks.Los_backing -> ()
  done

let test_compact_consolidates () =
  let heap = fresh_heap ~heap_kb:256 () in
  (* Withhold a couple of blocks (the emergency caller's reserve), fill
     and fragment the rest, then hand the reserve to the compactor. *)
  Heap.ensure_reserve heap;
  let kept = fragment heap ~keep_every:6 in
  Heap.release_reserve heap;
  let free_before = Heap.available_blocks heap in
  let live_before = Heap.live_bytes heap in
  let gc_alloc = Heap.make_allocator heap in
  let tc = Trace_cost.create () in
  let copied =
    Compaction.compact heap tc ~cost:Cost_model.default ~threads:4 ~gc_alloc
  in
  check "copied something" true (copied > 0);
  check "gained whole free blocks" true (Heap.available_blocks heap > free_before);
  check_int "no object lost or duplicated" live_before (Heap.live_bytes heap);
  List.iter
    (fun (obj : Obj_model.t) ->
      check "survivor registered" true (Obj_model.Registry.mem heap.registry obj.id);
      check "survivor addressable" true (Addr.valid heap.cfg (Obj_model.addr obj));
      check "rc preserved" true (Heap.rc_of heap obj > 0))
    kept;
  check "compaction cost accounted" true (Trace_cost.cpu_ns tc > 0.0)

let test_compact_no_work_when_empty () =
  let heap = fresh_heap ~heap_kb:256 () in
  let gc_alloc = Heap.make_allocator heap in
  let tc = Trace_cost.create () in
  let copied =
    Compaction.compact heap tc ~cost:Cost_model.default ~threads:4 ~gc_alloc
  in
  check_int "nothing to copy" 0 copied

let test_compact_respects_reserve () =
  let heap = fresh_heap ~heap_kb:256 () in
  ignore (fragment heap ~keep_every:6);
  Heap.ensure_reserve heap;
  let reserve = heap.reserve in
  let gc_alloc = Heap.make_allocator heap in
  let tc = Trace_cost.create () in
  ignore (Compaction.compact heap tc ~cost:Cost_model.default ~threads:4 ~gc_alloc);
  Vec.iter
    (fun b ->
      check "reserve block untouched" true
        (Blocks.state heap.blocks b = Blocks.In_use
        && Rc_table.block_is_free heap.rc heap.cfg b))
    reserve

let test_compact_stops_with_headroom () =
  (* Compaction must not churn a heap that already has ample free space:
     it stops once a quarter of the blocks are free. *)
  let heap = fresh_heap ~heap_kb:512 () in
  let a = Heap.make_allocator heap in
  for _ = 1 to 20 do
    match Heap.alloc heap a ~size:64 ~nfields:0 with
    | Some obj -> Heap.pin heap obj
    | None -> ()
  done;
  Heap.retire_all_allocators heap;
  Compaction.reclassify heap;
  let gc_alloc = Heap.make_allocator heap in
  let tc = Trace_cost.create () in
  let copied =
    Compaction.compact heap tc ~cost:Cost_model.default ~threads:4 ~gc_alloc
  in
  check_int "already-roomy heap untouched" 0 copied

let compact_preserves_live_prop =
  QCheck.Test.make ~name:"compaction preserves every live object" ~count:25
    QCheck.(int_range 2 12)
    (fun keep_every ->
      let heap = fresh_heap ~heap_kb:256 () in
      Heap.ensure_reserve heap;
      let kept = fragment heap ~keep_every in
      Heap.release_reserve heap;
      let ids = List.map (fun (o : Obj_model.t) -> o.id) kept in
      let gc_alloc = Heap.make_allocator heap in
      let tc = Trace_cost.create () in
      ignore
        (Compaction.compact heap tc ~cost:Cost_model.default ~threads:4 ~gc_alloc);
      List.for_all (fun id -> Obj_model.Registry.mem heap.registry id) ids)

let suite =
  [ ( "compaction:reserve",
      [ Alcotest.test_case "roundtrip" `Quick test_reserve_roundtrip;
        Alcotest.test_case "idempotent" `Quick test_reserve_idempotent;
        Alcotest.test_case "scales down" `Quick test_reserve_scales_down;
        Alcotest.test_case "partial exhaustion" `Quick
          test_reserve_survives_partial_exhaustion ] );
    ( "compaction:compact",
      [ Alcotest.test_case "reclassify" `Quick test_reclassify;
        Alcotest.test_case "consolidates" `Quick test_compact_consolidates;
        Alcotest.test_case "empty heap" `Quick test_compact_no_work_when_empty;
        Alcotest.test_case "respects reserve" `Quick test_compact_respects_reserve;
        Alcotest.test_case "stops with headroom" `Quick test_compact_stops_with_headroom ]
      @ [ QCheck_alcotest.to_alcotest compact_preserves_live_prop ] ) ]
